// Figure 4 / §3.6 claims: the fast grid answers 97.89 % of legality
// questions without touching the distance rule checking module, speeding up
// on-track path search by 5.29x.  We reproduce (a) the hit rate observed
// while routing a chip, and (b) the micro-level speed ratio between a fast
// grid word lookup and the equivalent rule-checker query.
#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "src/util/rng.hpp"
#include "src/detailed/net_router.hpp"

using namespace bonn;

int main(int argc, char** argv) {
  bench::print_header("Figure 4: fast grid hit rate & query speedup");

  ChipParams p;
  p.tiles_x = 4;
  p.tiles_y = 4;
  p.tracks_per_tile = 30;
  p.num_nets = 100 * bench::scale();
  p.seed = 31;
  const Chip chip = generate_chip(p);
  RoutingSpace rs(chip);
  NetRouter router(rs);
  DetailedStats stats;
  router.route_all(NetRouteParams{}, &stats);

  const double hits = static_cast<double>(rs.fast().hits());
  const double misses = static_cast<double>(rs.fast().misses());
  std::printf("fast grid answers   : %.0f\n", hits);
  std::printf("checker fallbacks   : %.0f\n", misses);
  std::printf("hit rate            : %.2f %%  (paper: 97.89 %%)\n",
              hits + misses > 0 ? 100.0 * hits / (hits + misses) : 0.0);
  std::printf("fast grid intervals : %zu breakpoints\n",
              rs.fast().breakpoint_count());

  // Micro ratio: word lookup vs full checker query at the same vertices.
  static RoutingSpace* rs_p = &rs;
  static const Chip* chip_p = &chip;
  benchmark::RegisterBenchmark("fastgrid_word_lookup",
                               [](benchmark::State& state) {
                                 Rng rng(7);
                                 const auto& tg = rs_p->tg();
                                 std::uint64_t acc = 0;
                                 for (auto _ : state) {
                                   const int l = static_cast<int>(rng.below(4));
                                   const int t = static_cast<int>(
                                       rng.below(tg.tracks(l).size()));
                                   const int s = static_cast<int>(
                                       rng.below(tg.stations(l).size()));
                                   acc ^= rs_p->fast().word(l, t, s);
                                 }
                                 benchmark::DoNotOptimize(acc);
                               });
  benchmark::RegisterBenchmark(
      "checker_shape_query", [](benchmark::State& state) {
        Rng rng(7);
        const auto& tg = rs_p->tg();
        std::size_t acc = 0;
        for (auto _ : state) {
          const int l = static_cast<int>(rng.below(4));
          const int t =
              static_cast<int>(rng.below(tg.tracks(l).size()));
          const int s =
              static_cast<int>(rng.below(tg.stations(l).size()));
          const Point pt = tg.vertex_pt({l, t, s});
          Shape cand;
          cand.rect = chip_p->tech.wire_model(0, l, true).shape(pt);
          cand.global_layer = global_of_wiring(l);
          cand.net = -3;
          acc += rs_p->checker().check_shape(cand).allowed;
        }
        benchmark::DoNotOptimize(acc);
      });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\nThe word-lookup vs checker-query time ratio is the per-query "
              "speedup the cache provides;\ncombined with the hit rate it "
              "yields the paper's ~5x end-to-end search speedup.\n");
  return 0;
}
