// §5.1 parallelization:
//  - global routing with shared prices across threads (volatility-tolerant
//    block solvers): wall-clock and λ vs thread count;
//  - detailed routing by region partitioning: we build the balanced
//    partition sequence the paper describes and report the attainable
//    speedup (sum/max workload) per partition level.
#include "bench/bench_common.hpp"
#include "src/detailed/routing_space.hpp"
#include "src/global/global_router.hpp"
#include "src/router/bonnroute.hpp"
#include "src/util/timer.hpp"

using namespace bonn;

int main() {
  bench::print_header("Parallelization (§5.1)");

  ChipParams p;
  p.tiles_x = 6;
  p.tiles_y = 6;
  p.tracks_per_tile = 30;
  p.num_nets = 300 * bench::scale();
  p.seed = 81;
  const Chip chip = generate_chip(p);
  RoutingSpace rs(chip);
  auto [nx, ny] = auto_tiles(chip);

  std::printf("\nGlobal routing, shared-price threads:\n");
  std::printf("%8s %10s %10s\n", "threads", "time[s]", "lambda");
  for (int threads : {1, 2, 4}) {
    GlobalRouter gr(chip, rs.tg(), rs.fast(), nx, ny);
    GlobalRouterParams gp;
    gp.sharing.phases = 8;
    gp.sharing.threads = threads;
    GlobalRoutingStats stats;
    gr.route(gp, &stats);
    std::printf("%8d %10.2f %10.3f\n", threads, stats.alg2_seconds,
                stats.lambda);
  }

  // Detailed routing region partitions: estimate per-region workload by pin
  // count; nets crossing region borders defer to the next (coarser) level —
  // exactly the partition sequence of §5.1.
  std::printf("\nDetailed routing partition sequence (workload balance):\n");
  std::printf("%9s %12s %12s %14s\n", "regions", "local nets", "deferred",
              "speedup (sum/max)");
  for (int slabs : {8, 4, 2, 1}) {
    const Coord w = chip.die.width() / slabs;
    std::vector<std::int64_t> load(static_cast<std::size_t>(slabs), 0);
    int local = 0, deferred = 0;
    for (const Net& n : chip.nets) {
      Coord xlo = chip.die.xhi, xhi = chip.die.xlo;
      for (int pid : n.pins) {
        const Point a = chip.pins[static_cast<std::size_t>(pid)].anchor();
        xlo = std::min(xlo, a.x);
        xhi = std::max(xhi, a.x);
      }
      const int r0 = static_cast<int>(std::min<Coord>((xlo - chip.die.xlo) / w,
                                                      slabs - 1));
      const int r1 = static_cast<int>(std::min<Coord>((xhi - chip.die.xlo) / w,
                                                      slabs - 1));
      // A margin keeps wires with large spacing away from region borders.
      const bool fits = r0 == r1 &&
                        (xlo - (chip.die.xlo + r0 * w)) > 300 &&
                        ((chip.die.xlo + (r0 + 1) * w) - xhi) > 300;
      if (fits) {
        ++local;
        load[static_cast<std::size_t>(r0)] += n.degree();
      } else {
        ++deferred;
      }
    }
    std::int64_t sum = 0, mx = 1;
    for (std::int64_t l : load) {
      sum += l;
      mx = std::max(mx, l);
    }
    std::printf("%9d %12d %12d %13.2fx\n", slabs, local, deferred,
                static_cast<double>(sum) / static_cast<double>(mx));
  }
  std::printf(
      "\nThe partition sequence shrinks (8 -> 1 regions) so deferred nets are\n"
      "closed in later, coarser levels — the structure of §5.1.\n");
  return 0;
}
