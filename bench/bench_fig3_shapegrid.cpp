// Figure 3: shape-grid compression — cell configurations are hash-consed
// and runs of identical cells merge into intervals.  The paper's example
// compresses a small layout into 15 intervals over 13 configurations; here
// we report interval/configuration counts against raw cell counts for a
// routed chip, plus insert/query throughput.
#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "src/util/rng.hpp"
#include "src/router/bonnroute.hpp"

using namespace bonn;

static Chip make_routed_chip(RoutingResult* out) {
  ChipParams p;
  p.tiles_x = 4;
  p.tiles_y = 4;
  p.tracks_per_tile = 30;
  p.num_nets = 120 * bench::scale();
  p.seed = 21;
  Chip chip = generate_chip(p);
  FlowParams fp;
  fp.global.sharing.phases = 4;
  fp.run_cleanup = false;
  run_bonnroute_flow(chip, fp, out);
  return chip;
}

int main(int argc, char** argv) {
  bench::print_header("Figure 3: shape grid interval & config compression");

  RoutingResult result;
  const Chip chip = make_routed_chip(&result);

  ShapeGrid grid(chip.tech, chip.die);
  std::size_t raw_cells = 0;
  std::vector<Shape> all = chip.fixed_shapes();
  for (const auto& paths : result.net_paths) {
    for (const RoutedPath& p : paths) {
      const auto shapes = expand_path(p, chip.tech);
      all.insert(all.end(), shapes.begin(), shapes.end());
    }
  }
  for (const Shape& s : all) {
    grid.insert(s, kStandard);
    // Upper bound on cells touched by this shape.
    raw_cells += static_cast<std::size_t>(
        (s.rect.width() / 100 + 2) * (s.rect.height() / 100 + 2));
  }

  std::printf("shapes inserted        : %zu\n", all.size());
  std::printf("cells touched (approx) : %zu\n", raw_cells);
  std::printf("stored intervals       : %zu (%.1fx compression)\n",
              grid.interval_count(),
              grid.interval_count()
                  ? static_cast<double>(raw_cells) / grid.interval_count()
                  : 0.0);
  std::printf("distinct configurations: %zu (%.1f cells/config)\n",
              grid.config_count(),
              grid.config_count()
                  ? static_cast<double>(raw_cells) / grid.config_count()
                  : 0.0);

  // Micro-benchmarks: insertion and window queries.
  static const Chip* chip_p = &chip;
  static const std::vector<Shape>* all_p = &all;
  benchmark::RegisterBenchmark("shapegrid_insert_remove",
                               [](benchmark::State& state) {
                                 ShapeGrid g(chip_p->tech, chip_p->die);
                                 std::size_t i = 0;
                                 for (auto _ : state) {
                                   const Shape& s = (*all_p)[i % all_p->size()];
                                   g.insert(s, kStandard);
                                   g.remove(s, kStandard);
                                   ++i;
                                 }
                               });
  static ShapeGrid* grid_p = &grid;
  benchmark::RegisterBenchmark("shapegrid_query_window",
                               [](benchmark::State& state) {
                                 Rng rng(5);
                                 std::size_t found = 0;
                                 for (auto _ : state) {
                                   const Coord x = rng.range(0, 10000);
                                   const Coord y = rng.range(0, 10000);
                                   grid_p->query(
                                       0, Rect{x, y, x + 300, y + 300},
                                       [&](const GridShape&) { ++found; });
                                 }
                                 benchmark::DoNotOptimize(found);
                               });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
