// Compare two perf-trajectory files (bench_scoreboard output) and fail on
// regressions.  The quality metrics are deterministic at any thread count,
// so they diff exactly across machines; runtime is machine-dependent and
// only compared when --runtime is given.
//
// Usage:
//   bench_diff [--check] [--runtime] [--quality-tol X] [--runtime-tol Y]
//              [--count-slack N] BASELINE.json CURRENT.json
//
//   --check          terse CI mode: print regressions only
//   --runtime        also compare total/route seconds and peak RSS
//   --quality-tol X  relative growth allowed on quality metrics (default .02)
//   --runtime-tol Y  relative growth allowed on runtime metrics (default .50)
//   --count-slack N  absolute slack on small counts (default 2)
//
// Exit code: 0 = no regression, 1 = regression found, 2 = usage/parse error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "src/obs/json.hpp"
#include "src/router/scoreboard.hpp"

using namespace bonn;

namespace {

std::optional<obs::Json> load_json(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path);
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  auto doc = obs::Json::parse(ss.str());
  if (!doc) std::fprintf(stderr, "bench_diff: %s is not valid JSON\n", path);
  return doc;
}

void print_summary(const obs::Json& base, const obs::Json& cur) {
  const obs::Json* chips = cur.is_object() ? cur.find("chips") : nullptr;
  if (!chips || !chips->is_array()) return;
  std::printf("%-8s %-10s %-16s %14s %14s %8s\n", "chip", "flow", "metric",
              "baseline", "current", "delta");
  for (const obs::Json& entry : chips->items()) {
    const obs::Json* name = entry.find("chip");
    const obs::Json* flows = entry.find("flows");
    if (!name || !flows || !flows->is_object()) continue;
    // Find the matching baseline chip entry.
    const obs::Json* base_flows = nullptr;
    const obs::Json* base_chips = base.is_object() ? base.find("chips")
                                                   : nullptr;
    if (base_chips && base_chips->is_array()) {
      for (const obs::Json& b : base_chips->items()) {
        const obs::Json* bn = b.find("chip");
        if (bn && bn->is_string() && bn->as_string() == name->as_string()) {
          base_flows = b.find("flows");
          break;
        }
      }
    }
    for (const auto& [flow, sb] : flows->members()) {
      const obs::Json* bsb =
          base_flows && base_flows->is_object() ? base_flows->find(flow)
                                                : nullptr;
      for (const char* metric :
           {"netlength_dbu", "vias", "drc_errors", "open_nets",
            "scenic_over_25", "total_seconds"}) {
        const obs::Json* cv = sb.find(metric);
        const obs::Json* bv = bsb ? bsb->find(metric) : nullptr;
        if (!cv || !cv->is_number()) continue;
        const double c = cv->as_double();
        const double b = bv && bv->is_number() ? bv->as_double() : 0.0;
        const double delta = b != 0 ? 100.0 * (c - b) / b : 0.0;
        std::printf("%-8s %-10s %-16s %14.2f %14.2f %+7.1f%%\n",
                    name->as_string().c_str(), flow.c_str(), metric, b, c,
                    delta);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchDiffOptions opts;
  bool check_mode = false;
  const char* base_path = nullptr;
  const char* cur_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_num = [&](double* out) {
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      *out = std::strtod(argv[++i], &end);
      return end && *end == '\0';
    };
    if (std::strcmp(arg, "--check") == 0) {
      check_mode = true;
    } else if (std::strcmp(arg, "--runtime") == 0) {
      opts.check_runtime = true;
    } else if (std::strcmp(arg, "--quality-tol") == 0) {
      if (!next_num(&opts.quality_tol)) { base_path = nullptr; break; }
    } else if (std::strcmp(arg, "--runtime-tol") == 0) {
      if (!next_num(&opts.runtime_tol)) { base_path = nullptr; break; }
    } else if (std::strcmp(arg, "--count-slack") == 0) {
      double v = 0;
      if (!next_num(&v)) { base_path = nullptr; break; }
      opts.count_slack = static_cast<std::int64_t>(v);
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "bench_diff: unknown flag %s\n", arg);
      return 2;
    } else if (!base_path) {
      base_path = arg;
    } else if (!cur_path) {
      cur_path = arg;
    } else {
      base_path = nullptr;
      break;
    }
  }
  if (!base_path || !cur_path) {
    std::fprintf(stderr,
                 "usage: bench_diff [--check] [--runtime] [--quality-tol X] "
                 "[--runtime-tol Y] [--count-slack N] BASELINE CURRENT\n");
    return 2;
  }

  const auto base = load_json(base_path);
  const auto cur = load_json(cur_path);
  if (!base || !cur) return 2;

  if (!check_mode) print_summary(*base, *cur);

  const auto regressions = diff_trajectories(*base, *cur, opts);
  if (regressions.empty()) {
    std::printf("bench_diff: OK (%s vs %s, quality tol %.0f%%%s)\n",
                base_path, cur_path, 100.0 * opts.quality_tol,
                opts.check_runtime ? ", runtime checked" : "");
    return 0;
  }
  for (const BenchRegression& r : regressions) {
    std::fprintf(stderr,
                 "bench_diff: REGRESSION %s/%s %s: %.2f -> %.2f (%+.1f%%)\n",
                 r.chip.c_str(), r.flow.c_str(), r.metric.c_str(), r.base,
                 r.current,
                 r.base != 0 ? 100.0 * (r.current - r.base) / r.base : 0.0);
  }
  return 1;
}
